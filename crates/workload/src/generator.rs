//! Turns a [`BenchmarkProfile`] into an executable synthetic program plus
//! its initialized memory image.

use rat_isa::{
    AluOp, BranchCond, Cpu, FpOp, FpReg, Instruction as I, IntReg, Operand, Pc, Program,
    SparseMemory,
};

use crate::profile::{Benchmark, BenchmarkProfile, ThreadClass};
use crate::rng::WorkloadRng;

// ---- fixed register allocation for generated programs ----
const R_STREAM_BASE: u8 = 1;
const R_STREAM_CUR: u8 = 2;
const R_CHASE: u8 = 3;
const R_LCG: u8 = 4;
const R_HOT_BASE: u8 = 5;
const R_ITER: u8 = 6;
const R_STREAM_MASK: u8 = 7;
const R_STREAM_LINE: u8 = 8;
const R_RAND_ADDR: u8 = 13;
const R_BR_TMP: u8 = 11;
/// First of the integer "rotation" registers fed by loads and compute.
const R_ROT_BASE: u8 = 16;
const R_ROT_COUNT: u8 = 12;
/// FP rotation registers.
const F_ROT_COUNT: u8 = 12;

// ---- disjoint data regions (per-thread virtual addresses) ----
const STREAM_BASE: u64 = 0x1000_0000;
const HOT_BASE: u64 = 0x3000_0000;
const CHASE_BASE: u64 = 0x5000_0000;
const LINE: u64 = 64;

const LCG_A: i64 = 6364136223846793005u64 as i64;
const LCG_C: i64 = 1442695040888963407u64 as i64;

/// Number of instructions targeted for one loop body (the static loop is
/// re-executed forever, so this also bounds the I-cache footprint: about
/// 4 KiB of instructions, comfortably I-cache resident like SPEC loops).
const BODY_TARGET: usize = 1024;

/// A ready-to-simulate thread context: the synthetic program, its
/// initialized data memory, and the initial register values.
///
/// Build one per hardware thread with [`ThreadImage::generate`], then turn
/// it into a functional context with [`ThreadImage::build_cpu`].
#[derive(Clone, Debug)]
pub struct ThreadImage {
    bench: Benchmark,
    program: Program,
    memory: SparseMemory,
    init_regs: Vec<(IntReg, u64)>,
    init_fps: Vec<(FpReg, f64)>,
}

impl ThreadImage {
    /// Generates the deterministic synthetic program for `bench`. The same
    /// `(bench, seed)` pair always yields the identical image.
    pub fn generate(bench: Benchmark, seed: u64) -> Self {
        Generator::new(bench.profile(), seed).build()
    }

    /// [`ThreadImage::generate`] with the memory regions filled through
    /// the lane-parallel RNG block path ([`WorkloadRng::next_block`])
    /// and bulk page writes — bit-identical output (the scalar path is
    /// the oracle; see `crates/workload/tests/wide_rng.rs`), several
    /// times faster on the multi-megabyte MEM working sets. The batch
    /// engine's image cache generates through this.
    pub fn generate_wide(bench: Benchmark, seed: u64) -> Self {
        let mut g = Generator::new(bench.profile(), seed);
        g.wide_fill = true;
        g.build()
    }

    /// Number of resident 64-bit words in the initialized memory image
    /// (whole touched pages) — the work unit the perfbench generator
    /// cells report throughput over.
    pub fn memory_words(&self) -> u64 {
        self.memory.resident_words() as u64
    }

    /// Deterministic content digest over the program, memory image, and
    /// planted registers — equal digests mean bit-identical images.
    /// Used by the wide-generation bit-identity tests.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold_bytes = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for i in self.program.iter() {
            fold_bytes(format!("{i:?}").as_bytes());
        }
        fold_bytes(&self.memory.digest().to_le_bytes());
        for &(r, v) in &self.init_regs {
            fold_bytes(format!("{r:?}={v:#x}").as_bytes());
        }
        for &(f, v) in &self.init_fps {
            fold_bytes(format!("{f:?}={:#x}", v.to_bits()).as_bytes());
        }
        h
    }

    /// The benchmark this image reproduces.
    pub fn benchmark(&self) -> Benchmark {
        self.bench
    }

    /// The benchmark's ILP/MEM class.
    pub fn class(&self) -> ThreadClass {
        self.bench.class()
    }

    /// The generated program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Instantiates a functional CPU context: program + copy of the memory
    /// image + planted registers.
    pub fn build_cpu(&self) -> Cpu {
        let mut cpu = Cpu::with_memory(self.program.clone(), self.memory.clone());
        for &(r, v) in &self.init_regs {
            cpu.state_mut().set_int_reg(r, v);
        }
        for &(f, v) in &self.init_fps {
            cpu.state_mut().set_fp_reg(f, v);
        }
        cpu
    }
}

/// Internal emission token: one unit of workload behavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Token {
    LoadStream,
    LoadRandom,
    LoadChase,
    StoreStream,
    StoreRandom,
    NoiseBranch,
    PredBranch,
    ComputeInt,
    ComputeFp,
}

struct Generator {
    prof: BenchmarkProfile,
    rng: WorkloadRng,
    /// Fill data memory through the lane-parallel RNG block path and
    /// bulk page writes (bit-identical to the scalar fill, which stays
    /// the oracle).
    wide_fill: bool,
    code: Vec<I>,
    stream_pos: u32,
    int_rot: u8,
    fp_rot: u8,
    last_int_dst: IntReg,
    last_load_dst: IntReg,
    stream_bytes: u64,
    hot_bytes: u64,
    chase_nodes: u64,
}

fn pow2_at_least(bytes: u64) -> u64 {
    bytes.next_power_of_two().max(8 * 1024)
}

impl Generator {
    fn new(prof: BenchmarkProfile, seed: u64) -> Self {
        let ws_bytes = prof.ws_kb as u64 * 1024;
        let stream_bytes = pow2_at_least((ws_bytes as f64 * prof.stream.max(0.05)) as u64);
        let hot_bytes = pow2_at_least(prof.hot_kb as u64 * 1024);
        let chase_bytes = pow2_at_least((ws_bytes as f64 * prof.chase) as u64);
        Generator {
            prof,
            rng: WorkloadRng::seed_from_u64(seed ^ 0x5eed_0000),
            wide_fill: false,
            code: Vec::with_capacity(BODY_TARGET + 64),
            stream_pos: 0,
            int_rot: 0,
            fp_rot: 0,
            last_int_dst: IntReg::new(R_ROT_BASE),
            last_load_dst: IntReg::new(R_ROT_BASE),
            stream_bytes,
            hot_bytes,
            chase_nodes: (chase_bytes / LINE).max(16),
        }
    }

    fn next_int_dst(&mut self) -> IntReg {
        let r = IntReg::new(R_ROT_BASE + self.int_rot);
        self.int_rot = (self.int_rot + 1) % R_ROT_COUNT;
        self.last_int_dst = r;
        r
    }

    fn rand_rot_int(&mut self) -> IntReg {
        IntReg::new(R_ROT_BASE + self.rng.below(R_ROT_COUNT as u64) as u8)
    }

    fn next_fp_dst(&mut self) -> FpReg {
        let r = FpReg::new(self.fp_rot);
        self.fp_rot = (self.fp_rot + 1) % F_ROT_COUNT;
        r
    }

    fn rand_rot_fp(&mut self) -> FpReg {
        FpReg::new(self.rng.below(F_ROT_COUNT as u64) as u8)
    }

    fn emit_compute_int(&mut self) {
        let w: f64 = self.rng.gen_f64();
        let op = match w {
            x if x < 0.45 => AluOp::Add,
            x if x < 0.60 => AluOp::Sub,
            x if x < 0.70 => AluOp::And,
            x if x < 0.78 => AluOp::Or,
            x if x < 0.86 => AluOp::Xor,
            x if x < 0.91 => AluOp::Shl,
            x if x < 0.95 => AluOp::Shr,
            x if x < 0.99 => AluOp::Mul,
            _ => AluOp::Div,
        };
        let src1 = if self.rng.gen_bool(self.prof.dep_density) {
            self.last_int_dst
        } else {
            self.rand_rot_int()
        };
        let src2 = if self.rng.gen_bool(0.5) {
            Operand::Reg(self.rand_rot_int())
        } else {
            Operand::Imm(1 + self.rng.below(63) as i64)
        };
        let dst = self.next_int_dst();
        self.code.push(I::int_op(op, dst, src1, src2));
    }

    fn emit_compute_fp(&mut self) {
        let w: f64 = self.rng.gen_f64();
        let op = match w {
            x if x < 0.50 => FpOp::Add,
            x if x < 0.92 => FpOp::Mul,
            _ => FpOp::Div,
        };
        let src1 = if self.rng.gen_bool(self.prof.dep_density) {
            let prev = (self.fp_rot + F_ROT_COUNT - 1) % F_ROT_COUNT;
            FpReg::new(prev)
        } else {
            self.rand_rot_fp()
        };
        let src2 = self.rand_rot_fp();
        let dst = self.next_fp_dst();
        self.code.push(I::fp_op(op, dst, src1, src2));
    }

    /// Stream loads walk the stream region 8 bytes at a time; every eighth
    /// load advances the cursor one cache line (with wraparound) and
    /// recomputes the line address, so a streaming thread touches a new
    /// line every 8 loads — independent, prefetchable misses.
    fn emit_load_stream(&mut self, fp: bool) {
        if self.stream_pos == 0 {
            self.code.push(I::int_op(
                AluOp::Add,
                IntReg::new(R_STREAM_CUR),
                IntReg::new(R_STREAM_CUR),
                Operand::Imm(LINE as i64),
            ));
            self.code.push(I::int_op(
                AluOp::And,
                IntReg::new(R_STREAM_CUR),
                IntReg::new(R_STREAM_CUR),
                Operand::Reg(IntReg::new(R_STREAM_MASK)),
            ));
            self.code.push(I::int_op(
                AluOp::Add,
                IntReg::new(R_STREAM_LINE),
                IntReg::new(R_STREAM_BASE),
                Operand::Reg(IntReg::new(R_STREAM_CUR)),
            ));
        }
        let off = (self.stream_pos * 8) as i32;
        self.stream_pos = (self.stream_pos + 1) % 8;
        if fp {
            let dst = self.next_fp_dst();
            self.code.push(I::LoadFp {
                dst,
                base: IntReg::new(R_STREAM_LINE),
                offset: off,
            });
        } else {
            let dst = self.next_int_dst();
            self.last_load_dst = dst;
            self.code
                .push(I::load(dst, IntReg::new(R_STREAM_LINE), off));
        }
    }

    /// Random loads draw an address from an in-register LCG over the hot
    /// region. The address never depends on loaded data, so these misses
    /// are independent (high MLP) — and remain valid during runahead.
    fn emit_load_random(&mut self, fp: bool) {
        self.code.push(I::int_op(
            AluOp::Mul,
            IntReg::new(R_LCG),
            IntReg::new(R_LCG),
            Operand::Imm(LCG_A),
        ));
        self.code.push(I::int_op(
            AluOp::Add,
            IntReg::new(R_LCG),
            IntReg::new(R_LCG),
            Operand::Imm(LCG_C),
        ));
        self.code.push(I::int_op(
            AluOp::Shr,
            IntReg::new(R_RAND_ADDR),
            IntReg::new(R_LCG),
            Operand::Imm(17),
        ));
        self.code.push(I::int_op(
            AluOp::And,
            IntReg::new(R_RAND_ADDR),
            IntReg::new(R_RAND_ADDR),
            Operand::Imm((self.hot_bytes as i64 - 1) & !7),
        ));
        self.code.push(I::int_op(
            AluOp::Add,
            IntReg::new(R_RAND_ADDR),
            IntReg::new(R_RAND_ADDR),
            Operand::Reg(IntReg::new(R_HOT_BASE)),
        ));
        if fp {
            let dst = self.next_fp_dst();
            self.code.push(I::LoadFp {
                dst,
                base: IntReg::new(R_RAND_ADDR),
                offset: 0,
            });
        } else {
            let dst = self.next_int_dst();
            self.last_load_dst = dst;
            self.code.push(I::load(dst, IntReg::new(R_RAND_ADDR), 0));
        }
    }

    /// Pointer-chase loads serially follow a random cyclic list: the next
    /// address *is* the loaded value, so after one L2 miss the chain is
    /// unknown — runahead cannot prefetch it (the mcf pathology).
    fn emit_load_chase(&mut self) {
        self.code
            .push(I::load(IntReg::new(R_CHASE), IntReg::new(R_CHASE), 0));
    }

    fn emit_store_stream(&mut self) {
        let off = (self.rng.below(8) as u32 * 8) as i32;
        if self.prof.fp_fraction > 0.0 && self.rng.gen_bool(self.prof.fp_fraction) {
            let src = self.rand_rot_fp();
            self.code.push(I::StoreFp {
                src,
                base: IntReg::new(R_STREAM_LINE),
                offset: off,
            });
        } else {
            let src = self.rand_rot_int();
            self.code
                .push(I::store(src, IntReg::new(R_STREAM_LINE), off));
        }
    }

    fn emit_store_random(&mut self) {
        let src = self.rand_rot_int();
        self.code.push(I::store(src, IntReg::new(R_RAND_ADDR), 0));
    }

    /// A data-dependent, biased-random branch. Half of them test LCG bits
    /// (address-generator data: stays valid in runahead), half test the
    /// most recently loaded value (becomes INV in runahead, modeling the
    /// "most likely path" divergence the paper describes).
    fn emit_noise_branch(&mut self) {
        let taken_prob = self.rng.range_f64(0.55, 0.90);
        let threshold = (taken_prob * 256.0) as i64;
        let src = if self.rng.gen_bool(0.5) {
            IntReg::new(R_LCG)
        } else {
            self.last_load_dst
        };
        self.code.push(I::int_op(
            AluOp::Shr,
            IntReg::new(R_BR_TMP),
            src,
            Operand::Imm(25),
        ));
        self.code.push(I::int_op(
            AluOp::And,
            IntReg::new(R_BR_TMP),
            IntReg::new(R_BR_TMP),
            Operand::Imm(255),
        ));
        self.code.push(I::int_op(
            AluOp::SltU,
            IntReg::new(R_BR_TMP),
            IntReg::new(R_BR_TMP),
            Operand::Imm(threshold),
        ));
        self.emit_skip_branch(BranchCond::Ne, IntReg::new(R_BR_TMP), IntReg::ZERO);
    }

    /// A highly predictable branch: always-taken or never-taken.
    fn emit_pred_branch(&mut self) {
        if self.rng.gen_bool(0.5) {
            self.emit_skip_branch(BranchCond::Eq, IntReg::ZERO, IntReg::ZERO);
        } else {
            self.emit_skip_branch(BranchCond::Ne, IntReg::ZERO, IntReg::ZERO);
        }
    }

    /// Emits `cond ? skip fillers : fall through`, patching the target.
    fn emit_skip_branch(&mut self, cond: BranchCond, src1: IntReg, src2: IntReg) {
        let branch_idx = self.code.len();
        self.code.push(I::branch(cond, src1, src2, 0)); // patched below
        let fillers = 1 + self.rng.below(3);
        for _ in 0..fillers {
            self.emit_compute_int();
        }
        let target = self.code.len() as u32;
        if let I::Branch { target: t, .. } = &mut self.code[branch_idx] {
            *t = Pc::new(target);
        }
    }

    fn emit(&mut self, token: Token) {
        match token {
            Token::LoadStream => {
                let fp = self.rng.gen_bool(self.prof.fp_fraction);
                self.emit_load_stream(fp);
            }
            Token::LoadRandom => {
                let fp = self.rng.gen_bool(self.prof.fp_fraction);
                self.emit_load_random(fp);
            }
            Token::LoadChase => self.emit_load_chase(),
            Token::StoreStream => self.emit_store_stream(),
            Token::StoreRandom => self.emit_store_random(),
            Token::NoiseBranch => self.emit_noise_branch(),
            Token::PredBranch => self.emit_pred_branch(),
            Token::ComputeInt => self.emit_compute_int(),
            Token::ComputeFp => self.emit_compute_fp(),
        }
    }

    fn build(mut self) -> ThreadImage {
        let prof = self.prof;
        let n_mem = (BODY_TARGET as f64 * prof.mem_fraction) as usize;
        let n_stores = (n_mem as f64 * prof.store_fraction) as usize;
        let n_loads = n_mem - n_stores;
        let n_chase = (n_loads as f64 * prof.chase) as usize;
        let n_random = (n_loads as f64 * prof.random) as usize;
        let n_stream = n_loads - n_chase - n_random;
        let n_branch = (BODY_TARGET as f64 * prof.branch_fraction) as usize;
        let n_noise = (n_branch as f64 * prof.branch_noise) as usize;
        let n_pred = n_branch - n_noise;

        let mut tokens = Vec::new();
        tokens.extend(std::iter::repeat_n(Token::LoadStream, n_stream));
        tokens.extend(std::iter::repeat_n(Token::LoadRandom, n_random));
        tokens.extend(std::iter::repeat_n(Token::LoadChase, n_chase));
        // Random stores need a valid R_RAND_ADDR; it is planted at init so
        // the first iteration is safe even if a store precedes any load.
        let n_store_random = (n_stores as f64 * prof.random) as usize;
        tokens.extend(std::iter::repeat_n(Token::StoreRandom, n_store_random));
        tokens.extend(std::iter::repeat_n(
            Token::StoreStream,
            n_stores - n_store_random,
        ));
        tokens.extend(std::iter::repeat_n(Token::NoiseBranch, n_noise));
        tokens.extend(std::iter::repeat_n(Token::PredBranch, n_pred));

        // Estimate the instruction overhead of the event tokens, then pad
        // with compute so the dynamic mix approximates the profile.
        let est_event_insts = n_stream as f64 * 1.4
            + n_random as f64 * 6.0
            + n_chase as f64
            + n_stores as f64
            + n_noise as f64 * 5.5
            + n_pred as f64 * 3.0;
        let n_compute = (BODY_TARGET as f64 - est_event_insts).max(0.0) as usize;
        let n_fp = (n_compute as f64 * prof.fp_fraction) as usize;
        tokens.extend(std::iter::repeat_n(Token::ComputeFp, n_fp));
        tokens.extend(std::iter::repeat_n(Token::ComputeInt, n_compute - n_fp));

        self.rng.shuffle(&mut tokens);
        for t in tokens {
            self.emit(t);
        }

        // Loop closing: count iterations and branch back (always taken, a
        // classic well-predicted backward branch).
        self.code.push(I::int_op(
            AluOp::Add,
            IntReg::new(R_ITER),
            IntReg::new(R_ITER),
            Operand::Imm(1),
        ));
        self.code
            .push(I::branch(BranchCond::GeU, IntReg::ZERO, IntReg::ZERO, 0));

        let memory = self.build_memory();
        let init_regs = vec![
            (IntReg::new(R_STREAM_BASE), STREAM_BASE),
            (IntReg::new(R_STREAM_CUR), 0),
            (IntReg::new(R_STREAM_LINE), STREAM_BASE),
            (IntReg::new(R_CHASE), CHASE_BASE),
            (IntReg::new(R_LCG), 0x9e37_79b9_7f4a_7c15),
            (IntReg::new(R_HOT_BASE), HOT_BASE),
            (IntReg::new(R_RAND_ADDR), HOT_BASE),
            (
                IntReg::new(R_STREAM_MASK),
                (self.stream_bytes - 1) & !(LINE - 1),
            ),
        ];
        let init_fps = (0..F_ROT_COUNT)
            .map(|i| (FpReg::new(i), 1.0 + i as f64 * 0.125))
            .collect();

        let program = Program::with_entry(self.code, Pc::new(0), prof.bench.name());
        ThreadImage {
            bench: prof.bench,
            program,
            memory,
            init_regs,
            init_fps,
        }
    }

    /// Lays out the three data regions: random-valued stream and hot
    /// arrays, and a random cyclic pointer-chase list (one node per cache
    /// line so every hop is a new line).
    fn build_memory(&mut self) -> SparseMemory {
        let mut mem = SparseMemory::new();
        let scalar = |mem: &mut SparseMemory, base: u64, bytes: u64, rng: &mut WorkloadRng| {
            for w in 0..(bytes / 8) {
                // Values double as FP data and as branch-noise sources.
                let v: u64 = if w % 2 == 0 {
                    rng.next_u64()
                } else {
                    (1.0 + (w % 1024) as f64 / 1024.0_f64).to_bits()
                };
                mem.write_u64(base + w * 8, v);
            }
        };
        // The wide fill processes the region one page at a time in
        // stack buffers (no heap traffic): it draws the page's random
        // words (consumed at even word offsets only) as one
        // lane-parallel block, assembles the page, and lands it with a
        // bulk write. `next_block` is compositional — any chunking
        // produces the same draws in the same order — so the stream
        // position after each region matches the scalar fill exactly.
        let wide = |mem: &mut SparseMemory, base: u64, bytes: u64, rng: &mut WorkloadRng| {
            const PAGE: usize = 512;
            let words = (bytes / 8) as usize;
            let mut draws = [0u64; PAGE / 2 + 1];
            let mut block = [0u64; PAGE];
            let mut w0 = 0usize;
            while w0 < words {
                let n = (words - w0).min(PAGE);
                // Even offsets within [w0, w0 + n); page size is even,
                // so chunk starts keep the region's draw parity.
                let ndraws = n.div_ceil(2);
                rng.next_block(&mut draws[..ndraws]);
                for (i, v) in block[..n].iter_mut().enumerate() {
                    let w = w0 + i;
                    *v = if w.is_multiple_of(2) {
                        draws[i / 2]
                    } else {
                        (1.0 + (w % 1024) as f64 / 1024.0_f64).to_bits()
                    };
                }
                mem.write_block(base + (w0 as u64) * 8, &block[..n]);
                w0 += n;
            }
        };
        let fill: &dyn Fn(&mut SparseMemory, u64, u64, &mut WorkloadRng) =
            if self.wide_fill { &wide } else { &scalar };
        fill(&mut mem, STREAM_BASE, self.stream_bytes, &mut self.rng);
        fill(&mut mem, HOT_BASE, self.hot_bytes, &mut self.rng);

        // Random cyclic permutation via Sattolo's algorithm: guarantees a
        // single cycle visiting every node.
        let n = self.chase_nodes as usize;
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.below(i as u64) as usize;
            perm.swap(i, j);
        }
        for (i, &next_idx) in perm.iter().enumerate() {
            let node = CHASE_BASE + (i as u64) * LINE;
            let next = CHASE_BASE + (next_idx as u64) * LINE;
            mem.write_u64(node, next);
        }
        mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rat_isa::InstructionKind;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        let a = ThreadImage::generate(Benchmark::Art, 7);
        let b = ThreadImage::generate(Benchmark::Art, 7);
        assert_eq!(a.program().len(), b.program().len());
        for (x, y) in a.program().iter().zip(b.program().iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ThreadImage::generate(Benchmark::Art, 1);
        let b = ThreadImage::generate(Benchmark::Art, 2);
        let same = a.program().len() == b.program().len()
            && a.program()
                .iter()
                .zip(b.program().iter())
                .all(|(x, y)| x == y);
        assert!(!same, "different seeds must yield different programs");
    }

    #[test]
    fn programs_execute_forever() {
        for &b in crate::ALL_BENCHMARKS {
            let img = ThreadImage::generate(b, 11);
            let mut cpu = img.build_cpu();
            for _ in 0..20_000 {
                cpu.step();
            }
            assert_eq!(cpu.retired(), 20_000, "{b}");
        }
    }

    fn dynamic_mix(bench: Benchmark, n: u64) -> (f64, f64, f64) {
        let img = ThreadImage::generate(bench, 3);
        let mut cpu = img.build_cpu();
        let (mut mem, mut br, mut fp) = (0u64, 0u64, 0u64);
        for _ in 0..n {
            let r = cpu.step();
            match r.inst.kind() {
                InstructionKind::Load | InstructionKind::Store => mem += 1,
                InstructionKind::Branch => br += 1,
                InstructionKind::FpAdd | InstructionKind::FpMul | InstructionKind::FpDiv => fp += 1,
                _ => {}
            }
        }
        (
            mem as f64 / n as f64,
            br as f64 / n as f64,
            fp as f64 / n as f64,
        )
    }

    #[test]
    fn dynamic_mem_fraction_tracks_profile() {
        for bench in [Benchmark::Mcf, Benchmark::Gzip, Benchmark::Swim] {
            let p = bench.profile();
            let (mem, _, _) = dynamic_mix(bench, 30_000);
            assert!(
                mem > p.mem_fraction * 0.5 && mem < p.mem_fraction * 1.6,
                "{bench}: dynamic mem {mem:.3} vs profile {:.3}",
                p.mem_fraction
            );
        }
    }

    #[test]
    fn fp_benchmarks_execute_fp() {
        let (_, _, fp_swim) = dynamic_mix(Benchmark::Swim, 20_000);
        let (_, _, fp_gzip) = dynamic_mix(Benchmark::Gzip, 20_000);
        assert!(fp_swim > 0.1, "swim fp share {fp_swim}");
        assert_eq!(fp_gzip, 0.0, "gzip must be integer-only");
    }

    #[test]
    fn chase_visits_many_lines() {
        let img = ThreadImage::generate(Benchmark::Mcf, 5);
        let mut cpu = img.build_cpu();
        let mut chase_lines = HashSet::new();
        for _ in 0..60_000 {
            let r = cpu.step();
            if let Some(addr) = r.eff_addr {
                if (CHASE_BASE..CHASE_BASE + (1 << 30)).contains(&addr) {
                    chase_lines.insert(addr / LINE);
                }
            }
        }
        assert!(
            chase_lines.len() > 1000,
            "pointer chase must wander widely, visited {}",
            chase_lines.len()
        );
    }

    #[test]
    fn stream_addresses_advance_sequentially() {
        let img = ThreadImage::generate(Benchmark::Swim, 5);
        let mut cpu = img.build_cpu();
        let mut stream_lines = Vec::new();
        for _ in 0..30_000 {
            let r = cpu.step();
            if let Some(addr) = r.eff_addr {
                if (STREAM_BASE..HOT_BASE).contains(&addr) {
                    let line = addr / LINE;
                    if stream_lines.last() != Some(&line) {
                        stream_lines.push(line);
                    }
                }
            }
        }
        assert!(stream_lines.len() > 100);
        // Largely monotonic: each new line is the previous + 1 until wrap.
        let increments = stream_lines.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            increments as f64 > stream_lines.len() as f64 * 0.8,
            "stream should advance line by line"
        );
    }

    #[test]
    fn working_set_respected() {
        let img = ThreadImage::generate(Benchmark::Eon, 9);
        let mut cpu = img.build_cpu();
        for _ in 0..30_000 {
            let r = cpu.step();
            if let Some(addr) = r.eff_addr {
                assert!(
                    (STREAM_BASE..CHASE_BASE + (1 << 30)).contains(&addr),
                    "address {addr:#x} outside data regions"
                );
            }
        }
    }

    #[test]
    fn branches_have_mixed_outcomes() {
        let img = ThreadImage::generate(Benchmark::Twolf, 13);
        let mut cpu = img.build_cpu();
        let (mut taken, mut total) = (0u64, 0u64);
        for _ in 0..30_000 {
            let r = cpu.step();
            if r.inst.kind() == InstructionKind::Branch {
                total += 1;
                taken += r.taken as u64;
            }
        }
        let ratio = taken as f64 / total as f64;
        assert!(ratio > 0.2 && ratio < 0.98, "taken ratio {ratio}");
    }
}

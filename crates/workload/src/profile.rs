//! Benchmark names and their microarchitectural profiles.

use std::fmt;

/// Thread classification used by the paper (§4): benchmarks are grouped by
/// their L2 miss rate into high-ILP threads and memory-bound threads.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ThreadClass {
    /// High instruction-level parallelism, cache-resident working set.
    Ilp,
    /// Memory-bound: working set far exceeds the shared L2.
    Mem,
}

impl fmt::Display for ThreadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadClass::Ilp => write!(f, "ILP"),
            ThreadClass::Mem => write!(f, "MEM"),
        }
    }
}

macro_rules! benchmarks {
    ($($variant:ident => $name:literal),+ $(,)?) => {
        /// Every SPEC CPU2000 benchmark that appears in Table 2 of the
        /// paper, reproduced as a synthetic program (see crate docs).
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
        pub enum Benchmark {
            $(#[doc = $name] $variant,)+
        }

        /// All benchmarks, in alphabetical order.
        pub const ALL_BENCHMARKS: &[Benchmark] = &[$(Benchmark::$variant,)+];

        impl Benchmark {
            /// The lowercase SPEC name (e.g. `"mcf"`).
            pub fn name(self) -> &'static str {
                match self {
                    $(Benchmark::$variant => $name,)+
                }
            }

            /// Parses a lowercase SPEC name.
            pub fn from_name(name: &str) -> Option<Benchmark> {
                match name {
                    $($name => Some(Benchmark::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

benchmarks! {
    Ammp => "ammp",
    Applu => "applu",
    Apsi => "apsi",
    Art => "art",
    Bzip2 => "bzip2",
    Crafty => "crafty",
    Eon => "eon",
    Equake => "equake",
    Fma3d => "fma3d",
    Galgel => "galgel",
    Gap => "gap",
    Gcc => "gcc",
    Gzip => "gzip",
    Lucas => "lucas",
    Mcf => "mcf",
    Mesa => "mesa",
    Mgrid => "mgrid",
    Parser => "parser",
    Perl => "perl",
    Swim => "swim",
    Twolf => "twolf",
    Vortex => "vortex",
    Vpr => "vpr",
    Wupwise => "wupwise",
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The generation parameters of one synthetic benchmark.
///
/// All fractions are in `[0, 1]`. `stream + random + chase` must sum to 1
/// (validated by [`BenchmarkProfile::validate`]).
#[derive(Clone, Copy, Debug)]
pub struct BenchmarkProfile {
    /// Which benchmark this profiles.
    pub bench: Benchmark,
    /// ILP or MEM class (paper §4, drives Table 2 grouping).
    pub class: ThreadClass,
    /// Total data working set in KiB (rounded up to a power of two by the
    /// generator). MEM benchmarks exceed the 1 MB L2 by design.
    pub ws_kb: u32,
    /// Extent of the *random-access* region in KiB (the "hot set"); small
    /// for ILP benchmarks so their random accesses are cache-resident.
    pub hot_kb: u32,
    /// Fraction of dynamic instructions that are loads/stores.
    pub mem_fraction: f64,
    /// Of memory operations, the fraction that are stores.
    pub store_fraction: f64,
    /// Of compute operations (and loads, for register targeting), the
    /// fraction in the FP pipeline.
    pub fp_fraction: f64,
    /// Fraction of dynamic instructions that are conditional branches.
    pub branch_fraction: f64,
    /// Of branches, the fraction that are data-dependent with a biased
    /// random outcome (the rest are highly predictable).
    pub branch_noise: f64,
    /// Of loads: fraction that stream sequentially over the working set.
    pub stream: f64,
    /// Of loads: fraction at LCG-random addresses in the hot set.
    pub random: f64,
    /// Of loads: fraction that pointer-chase a random cyclic list.
    pub chase: f64,
    /// Probability that a compute op reads the most recently produced
    /// value (higher = longer dependence chains = less ILP).
    pub dep_density: f64,
}

impl BenchmarkProfile {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is out of range or the access-shape fractions
    /// do not sum to 1.
    pub fn validate(&self) {
        let fr = [
            self.mem_fraction,
            self.store_fraction,
            self.fp_fraction,
            self.branch_fraction,
            self.branch_noise,
            self.stream,
            self.random,
            self.chase,
            self.dep_density,
        ];
        for f in fr {
            assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
        }
        let s = self.stream + self.random + self.chase;
        assert!(
            (s - 1.0).abs() < 1e-9,
            "access shares must sum to 1, got {s}"
        );
        assert!(self.ws_kb >= 16, "working set must be at least 16 KiB");
        assert!(self.hot_kb >= 16, "hot set must be at least 16 KiB");
        assert!(
            self.mem_fraction + self.branch_fraction < 0.9,
            "need room for compute"
        );
    }
}

impl Benchmark {
    /// The benchmark's generation profile. Parameter choices follow the
    /// published SPEC2000 characterizations: MEM benchmarks get multi-MB
    /// working sets (mcf the largest, dominated by pointer chasing; art and
    /// swim streaming), ILP benchmarks get cache-resident sets and highly
    /// predictable branches.
    pub fn profile(self) -> BenchmarkProfile {
        use Benchmark as B;
        use ThreadClass::{Ilp, Mem};
        let p = |class,
                 ws_kb,
                 hot_kb,
                 mem_fraction,
                 store_fraction,
                 fp_fraction,
                 branch_fraction,
                 branch_noise,
                 stream,
                 random,
                 chase,
                 dep_density| BenchmarkProfile {
            bench: self,
            class,
            ws_kb,
            hot_kb,
            mem_fraction,
            store_fraction,
            fp_fraction,
            branch_fraction,
            branch_noise,
            stream,
            random,
            chase,
            dep_density,
        };
        let prof = match self {
            // ---- memory-bound (MEM) ----
            // mcf: dominated by pointer chasing over a multi-MB structure;
            // some locality survives (the chase region partially L2-caches).
            B::Mcf => p(
                Mem, 4096, 2048, 0.35, 0.10, 0.0, 0.20, 0.25, 0.05, 0.45, 0.50, 0.50,
            ),
            B::Art => p(
                Mem, 8192, 4096, 0.30, 0.05, 0.60, 0.10, 0.05, 0.85, 0.15, 0.0, 0.30,
            ),
            B::Swim => p(
                Mem, 8192, 4096, 0.32, 0.15, 0.70, 0.06, 0.02, 0.90, 0.10, 0.0, 0.30,
            ),
            B::Lucas => p(
                Mem, 4096, 2048, 0.28, 0.10, 0.75, 0.05, 0.02, 0.80, 0.20, 0.0, 0.40,
            ),
            B::Applu => p(
                Mem, 4096, 2048, 0.30, 0.15, 0.70, 0.08, 0.05, 0.75, 0.25, 0.0, 0.40,
            ),
            B::Equake => p(
                Mem, 4096, 2048, 0.33, 0.10, 0.55, 0.12, 0.10, 0.50, 0.35, 0.15, 0.45,
            ),
            B::Parser => p(
                Mem, 2048, 1024, 0.30, 0.12, 0.0, 0.22, 0.20, 0.10, 0.55, 0.35, 0.50,
            ),
            B::Twolf => p(
                Mem, 2048, 2048, 0.32, 0.10, 0.0, 0.20, 0.22, 0.05, 0.80, 0.15, 0.50,
            ),
            B::Vpr => p(
                Mem, 2048, 2048, 0.30, 0.10, 0.10, 0.18, 0.20, 0.10, 0.75, 0.15, 0.50,
            ),
            B::Ammp => p(
                Mem, 4096, 2048, 0.30, 0.10, 0.60, 0.10, 0.10, 0.40, 0.40, 0.20, 0.45,
            ),
            // ---- high-ILP (ILP) ----
            // Cache-resident: stream regions of 16-32 KiB (one pass is a
            // few thousand instructions, so steady state is reached fast)
            // and hot sets that fit the 64 KiB D-cache.
            B::Apsi => p(
                Ilp, 16, 16, 0.22, 0.10, 0.60, 0.08, 0.03, 0.70, 0.30, 0.0, 0.25,
            ),
            B::Eon => p(
                Ilp, 16, 16, 0.20, 0.10, 0.30, 0.12, 0.05, 0.60, 0.40, 0.0, 0.30,
            ),
            B::Gcc => p(
                Ilp, 16, 16, 0.25, 0.12, 0.0, 0.20, 0.10, 0.50, 0.50, 0.0, 0.35,
            ),
            B::Fma3d => p(
                Ilp, 16, 16, 0.22, 0.10, 0.60, 0.08, 0.04, 0.70, 0.30, 0.0, 0.30,
            ),
            B::Mesa => p(
                Ilp, 16, 16, 0.20, 0.10, 0.50, 0.10, 0.05, 0.60, 0.40, 0.0, 0.30,
            ),
            B::Mgrid => p(
                Ilp, 16, 16, 0.28, 0.12, 0.70, 0.04, 0.02, 0.90, 0.10, 0.0, 0.25,
            ),
            B::Galgel => p(
                Ilp, 16, 16, 0.24, 0.10, 0.70, 0.05, 0.03, 0.80, 0.20, 0.0, 0.25,
            ),
            B::Gzip => p(
                Ilp, 16, 16, 0.22, 0.12, 0.0, 0.15, 0.08, 0.60, 0.40, 0.0, 0.40,
            ),
            B::Bzip2 => p(
                Ilp, 16, 16, 0.24, 0.12, 0.0, 0.15, 0.08, 0.60, 0.40, 0.0, 0.40,
            ),
            B::Vortex => p(
                Ilp, 16, 16, 0.26, 0.14, 0.0, 0.16, 0.07, 0.55, 0.45, 0.0, 0.35,
            ),
            B::Crafty => p(
                Ilp, 16, 16, 0.20, 0.10, 0.0, 0.18, 0.08, 0.50, 0.50, 0.0, 0.35,
            ),
            B::Gap => p(
                Ilp, 16, 16, 0.22, 0.10, 0.0, 0.14, 0.06, 0.60, 0.40, 0.0, 0.35,
            ),
            B::Perl => p(
                Ilp, 16, 16, 0.20, 0.10, 0.0, 0.18, 0.07, 0.55, 0.45, 0.0, 0.35,
            ),
            B::Wupwise => p(
                Ilp, 16, 16, 0.24, 0.10, 0.60, 0.05, 0.02, 0.80, 0.20, 0.0, 0.25,
            ),
        };
        prof.validate();
        prof
    }

    /// The benchmark's class (by construction of the profile).
    pub fn class(self) -> ThreadClass {
        self.profile().class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for &b in ALL_BENCHMARKS {
            b.profile().validate();
        }
    }

    #[test]
    fn name_roundtrip() {
        for &b in ALL_BENCHMARKS {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("quake3"), None);
    }

    #[test]
    fn mem_benchmarks_exceed_l2() {
        for &b in ALL_BENCHMARKS {
            let p = b.profile();
            match p.class {
                ThreadClass::Mem => assert!(p.ws_kb >= 2048, "{b} too small for MEM"),
                ThreadClass::Ilp => assert!(p.ws_kb <= 64, "{b} too large for ILP"),
            }
        }
    }

    #[test]
    fn table2_class_expectations() {
        use Benchmark as B;
        for b in [
            B::Mcf,
            B::Art,
            B::Swim,
            B::Twolf,
            B::Vpr,
            B::Equake,
            B::Parser,
            B::Lucas,
            B::Applu,
            B::Ammp,
        ] {
            assert_eq!(b.class(), ThreadClass::Mem, "{b}");
        }
        for b in [
            B::Apsi,
            B::Eon,
            B::Gcc,
            B::Gzip,
            B::Bzip2,
            B::Vortex,
            B::Crafty,
            B::Fma3d,
            B::Mesa,
            B::Mgrid,
            B::Galgel,
            B::Gap,
            B::Perl,
            B::Wupwise,
        ] {
            assert_eq!(b.class(), ThreadClass::Ilp, "{b}");
        }
    }

    #[test]
    fn chase_heavy_benchmarks_are_mcf_like() {
        assert!(Benchmark::Mcf.profile().chase >= 0.5);
        assert!(Benchmark::Art.profile().stream > 0.5);
    }

    #[test]
    fn benchmark_count_matches_table2() {
        assert_eq!(ALL_BENCHMARKS.len(), 24);
    }
}

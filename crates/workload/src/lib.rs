//! # rat-workload — synthetic SPEC CPU2000-like workloads
//!
//! The paper evaluates on SPEC CPU2000 Alpha binaries. Those are not
//! redistributable (and we have no Alpha toolchain), so this crate provides
//! the substitution described in `DESIGN.md`: for every benchmark named in
//! Table 2 of the paper, a **deterministic synthetic program** over the
//! [`rat_isa`] instruction set whose *microarchitectural profile* — working
//! set size, memory instruction fraction, FP share, branch predictability,
//! and the shape of its memory-level parallelism (streaming vs. random vs.
//! pointer-chasing) — matches the published characterization of that
//! benchmark.
//!
//! The three access shapes matter because they interact differently with
//! Runahead Threads:
//!
//! * **streaming** (art, swim, mgrid…): independent loads over a large
//!   array — runahead runs ahead and prefetches future lines, huge MLP;
//! * **random** (twolf, vpr…): LCG-generated addresses — independent, so
//!   runahead still exposes MLP;
//! * **pointer-chasing** (mcf, parser…): each load's address depends on the
//!   previous load's value — after the first miss the chase register is INV
//!   and runahead cannot prefetch the chain, exactly the hard case for
//!   runahead execution.
//!
//! # Example
//!
//! ```
//! use rat_workload::{Benchmark, ThreadImage};
//!
//! let img = ThreadImage::generate(Benchmark::Mcf, 42);
//! let mut cpu = img.build_cpu();
//! for _ in 0..1000 {
//!     cpu.step(); // functionally executes the synthetic mcf loop
//! }
//! assert_eq!(cpu.retired(), 1000);
//! ```

mod generator;
mod mixes;
mod profile;
mod rng;

pub use generator::ThreadImage;
pub use mixes::{mixes_for_group, Mix, WorkloadGroup, ALL_GROUPS};
pub use profile::{Benchmark, BenchmarkProfile, ThreadClass, ALL_BENCHMARKS};
pub use rng::{WideRng, WorkloadRng};

//! A small deterministic PRNG for workload generation.
//!
//! The container builds offline, so instead of an external `rand`
//! dependency the generator uses this splitmix64 stream. Workload images
//! are part of the experiment definition: the same `(benchmark, seed)`
//! pair must produce the identical program on every host and toolchain,
//! which a fully specified in-repo generator guarantees.

/// Deterministic splitmix64 generator.
#[derive(Clone, Debug)]
pub struct WorkloadRng(u64);

impl WorkloadRng {
    /// Seeds the stream (mirrors `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        WorkloadRng(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Modulo bias is negligible for the small bounds used here
        // (≤ 2^20 ≪ 2^64) and keeps the stream position deterministic.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = WorkloadRng::seed_from_u64(42);
        let mut b = WorkloadRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = WorkloadRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = WorkloadRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = r.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = WorkloadRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}

//! A small deterministic PRNG for workload generation.
//!
//! The container builds offline, so instead of an external `rand`
//! dependency the generator uses this splitmix64 stream. Workload images
//! are part of the experiment definition: the same `(benchmark, seed)`
//! pair must produce the identical program on every host and toolchain,
//! which a fully specified in-repo generator guarantees.
//!
//! Two lane-parallel forms ride on the same algorithm (the batch
//! engine's image generator uses them; `crates/workload/tests/wide_rng.rs`
//! proves both bit-identical to the scalar stream):
//!
//! * [`WorkloadRng::next_block`] — the next `k` outputs of *one* stream,
//!   computed lane-parallel. splitmix64 advances its state by a fixed
//!   odd gamma per draw, so the `i`-th upcoming output is a pure
//!   function `mix(state + i·GAMMA)` of the current state: a block of
//!   consecutive outputs has no loop-carried dependence and the
//!   autovectorizer can lower the per-lane mix to SIMD.
//! * [`WideRng`] — `L` *independent* streams advanced in lockstep, one
//!   array of states mixed per call; lane `i` is bit-identical to a
//!   scalar [`WorkloadRng`] seeded with lane `i`'s seed.

/// splitmix64's fixed odd state increment (2⁶⁴/φ, Weyl sequence).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 output function: finalizes one state value into one
/// uniform output word. Pure, so blocks and lanes can apply it in
/// parallel.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic splitmix64 generator.
#[derive(Clone, Debug)]
pub struct WorkloadRng(u64);

impl WorkloadRng {
    /// Seeds the stream (mirrors `SeedableRng::seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> Self {
        WorkloadRng(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GAMMA);
        mix(self.0)
    }

    /// Fills `out` with the stream's next `out.len()` outputs —
    /// bit-identical to that many [`WorkloadRng::next_u64`] calls, but
    /// without a loop-carried dependence: within each chunk the lane
    /// states are `state + (i+1)·GAMMA` and the mix applies per lane,
    /// a shape the autovectorizer lowers to SIMD. Used by the batch
    /// engine's wide image-generation path.
    pub fn next_block(&mut self, out: &mut [u64]) {
        const LANES: usize = 8;
        let mut chunks = out.chunks_exact_mut(LANES);
        for chunk in chunks.by_ref() {
            let base = self.0;
            let mut states = [0u64; LANES];
            for (i, s) in states.iter_mut().enumerate() {
                *s = base.wrapping_add(GAMMA.wrapping_mul(i as u64 + 1));
            }
            for (dst, s) in chunk.iter_mut().zip(states) {
                *dst = mix(s);
            }
            self.0 = base.wrapping_add(GAMMA.wrapping_mul(LANES as u64));
        }
        for dst in chunks.into_remainder() {
            *dst = self.next_u64();
        }
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Modulo bias is negligible for the small bounds used here
        // (≤ 2^20 ≪ 2^64) and keeps the stream position deterministic.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// `L` independent splitmix64 streams advanced in lockstep: one call
/// steps every lane's state and mixes them as an array (no cross-lane
/// dependence, so the loop autovectorizes). Lane `i` emits exactly the
/// stream of `WorkloadRng::seed_from_u64(seeds[i])`.
#[derive(Clone, Debug)]
pub struct WideRng<const L: usize> {
    states: [u64; L],
}

impl<const L: usize> WideRng<L> {
    /// One stream per seed.
    pub fn from_seeds(seeds: [u64; L]) -> Self {
        WideRng { states: seeds }
    }

    /// Streams seeded `base, base+1, …, base+L-1` — the workload
    /// convention (thread `i` of a mix uses `seed + i`).
    pub fn seed_offsets(base: u64) -> Self {
        let mut states = [0u64; L];
        for (i, s) in states.iter_mut().enumerate() {
            *s = base.wrapping_add(i as u64);
        }
        WideRng { states }
    }

    /// Advances every lane one draw and returns the `L` outputs.
    pub fn next_lanes(&mut self) -> [u64; L] {
        let mut out = [0u64; L];
        for s in self.states.iter_mut() {
            *s = s.wrapping_add(GAMMA);
        }
        for (dst, s) in out.iter_mut().zip(self.states) {
            *dst = mix(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = WorkloadRng::seed_from_u64(42);
        let mut b = WorkloadRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = WorkloadRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = WorkloadRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = r.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = WorkloadRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn block_matches_scalar_and_resumes() {
        // Interleaving block and scalar draws must track one stream.
        let mut wide = WorkloadRng::seed_from_u64(7);
        let mut scalar = WorkloadRng::seed_from_u64(7);
        let mut buf = [0u64; 13];
        wide.next_block(&mut buf);
        for &v in &buf {
            assert_eq!(v, scalar.next_u64());
        }
        assert_eq!(wide.next_u64(), scalar.next_u64(), "state resumes");
    }

    #[test]
    fn wide_lanes_match_scalars() {
        let mut wide = WideRng::<4>::seed_offsets(100);
        let mut scalars: Vec<WorkloadRng> = (100..104).map(WorkloadRng::seed_from_u64).collect();
        for _ in 0..64 {
            let lanes = wide.next_lanes();
            for (lane, s) in lanes.iter().zip(scalars.iter_mut()) {
                assert_eq!(*lane, s.next_u64());
            }
        }
    }
}
